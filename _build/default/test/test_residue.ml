(* Residuation (Section 3.4): the symbolic rules, Theorem 1 soundness
   against the model-theoretic oracle, and the scheduler-state
   automaton of Figure 2. *)

open Wf_core
open Helpers

let residual_eq msg d x expected =
  checkb msg (Equiv.equal (Residue.symbolic d (lit x)) expected)

let test_rules_on_atoms () =
  residual_eq "e/e = T" e "e" Expr.top;
  residual_eq "~e/e = 0" ne "e" Expr.zero;
  residual_eq "f/e = f (rule 6)" f "e" f;
  residual_eq "T/e = T (rule 2)" Expr.top "e" Expr.top;
  residual_eq "0/e = 0 (rule 1)" Expr.zero "e" Expr.zero

let test_rules_on_sequences () =
  residual_eq "(e.f)/e = f (rule 3)" (Expr.seq e f) "e" f;
  residual_eq "(e.f)/f = 0 (rule 7)" (Expr.seq e f) "f" Expr.zero;
  residual_eq "(f.~e)/e = 0 (rule 8)" (Expr.seq f ne) "e" Expr.zero;
  residual_eq "(f.g)/e = f.g" (Expr.seq f g) "e" (Expr.seq f g)

let test_example6 () =
  (* Example 6: (ē+f̄+e·f)/e = f̄+f and (ē+f)/f̄ = ē. *)
  residual_eq "D</e" Catalog.d_lt "e" (Expr.choice nf f);
  residual_eq "D→/~f" Catalog.d_arrow "~f" ne

let test_figure2_dlt () =
  (* Figure 2, left: the scheduler states of D<. *)
  let aut = Automaton.build Catalog.d_lt in
  check Alcotest.int "D< has 5 states" 5 (Automaton.num_states aut);
  let s0 = Automaton.initial aut in
  let after trace = Automaton.run aut (Trace.of_events trace) in
  checkb "complement of e accepts" (Automaton.is_accepting aut (after [ "~e" ]));
  checkb "complement of f accepts" (Automaton.is_accepting aut (after [ "~f" ]));
  checkb "after e: f+~f"
    (Equiv.equal (Automaton.state_expr aut (after [ "e" ])) (Expr.choice f nf));
  checkb "after f: ~e"
    (Equiv.equal (Automaton.state_expr aut (after [ "f" ])) ne);
  checkb "e after f is dead (f precedes e)"
    (Automaton.is_dead aut (after [ "f"; "e" ]));
  checkb "e then f accepts" (Automaton.is_accepting aut (after [ "e"; "f" ]));
  checkb "initial completable" (Automaton.can_complete aut s0);
  checkb "dead not completable"
    (not (Automaton.can_complete aut (after [ "f"; "e" ])))

let test_figure2_darrow () =
  (* Figure 2, right: D→. *)
  let aut = Automaton.build Catalog.d_arrow in
  let after trace = Automaton.run aut (Trace.of_events trace) in
  checkb "~e accepts" (Automaton.is_accepting aut (after [ "~e" ]));
  checkb "f accepts" (Automaton.is_accepting aut (after [ "f" ]));
  checkb "after e must see f"
    (Equiv.equal (Automaton.state_expr aut (after [ "e" ])) f);
  checkb "e then ~f dead" (Automaton.is_dead aut (after [ "e"; "~f" ]))

let test_automaton_acceptance_matches_semantics () =
  (* For any D and trace u: u ⊨ D iff running u ends at a state whose
     residual accepts the empty remainder, i.e. the state denotes a set
     containing λ.  We check the stronger property used by the central
     scheduler: the run of u on the automaton yields exactly D/u. *)
  List.iter
    (fun (name, d) ->
      let aut = Automaton.build d in
      List.iter
        (fun u ->
          let by_aut = Automaton.state_expr aut (Automaton.run aut u) in
          let by_residue = Nf.to_expr (Residue.by_trace (Nf.of_expr d) u) in
          checkb
            (Printf.sprintf "%s consistent on %s" name (Trace.to_string u))
            (Equiv.equal by_aut by_residue))
        (Universe.traces (Expr.symbols d)))
    [ ("d_lt", Catalog.d_lt); ("d_arrow", Catalog.d_arrow) ]

let test_accepted_paths () =
  (* Π(D→) contains ⟨~e⟩ and ⟨f⟩ and never a path through a dead
     state. *)
  let paths = Paths.pi Catalog.d_arrow in
  checkb "⟨~e⟩ ∈ Π" (List.exists (Trace.equal (Trace.of_events [ "~e" ])) paths);
  checkb "⟨f⟩ ∈ Π" (List.exists (Trace.equal (Trace.of_events [ "f" ])) paths);
  checkb "⟨e ~f⟩ ∉ Π"
    (not (List.exists (Trace.equal (Trace.of_events [ "e"; "~f" ])) paths));
  (* Definition 3: residuating along any member yields T. *)
  checkb "all paths residuate to T"
    (List.for_all
       (fun p ->
         Equiv.is_top (Nf.to_expr (Residue.by_trace (Nf.of_expr Catalog.d_arrow) p)))
       paths)

let test_required_literals () =
  (* After s_buy occurs, dependency (1) of Example 4 requires s_book. *)
  let d1 = Catalog.requires (lit "s_buy") (lit "s_book") in
  let aut = Automaton.build d1 in
  let s0 = Automaton.initial aut in
  checkb "nothing required initially"
    (Literal.Set.is_empty (Automaton.required_literals aut s0));
  let s1 = Automaton.step aut s0 (lit "s_buy") in
  checkb "s_book required after s_buy"
    (Literal.Set.mem (lit "s_book") (Automaton.required_literals aut s1));
  let s2 = Automaton.step aut s0 (lit "~s_buy") in
  checkb "nothing required after ~s_buy"
    (Literal.Set.is_empty (Automaton.required_literals aut s2))

let gen_expr_lit =
  QCheck2.Gen.pair gen_expr gen_literal

let suite =
  [
    Alcotest.test_case "rules on atoms" `Quick test_rules_on_atoms;
    Alcotest.test_case "rules on sequences" `Quick test_rules_on_sequences;
    Alcotest.test_case "Example 6" `Quick test_example6;
    Alcotest.test_case "Figure 2: D< automaton" `Quick test_figure2_dlt;
    Alcotest.test_case "Figure 2: D→ automaton" `Quick test_figure2_darrow;
    Alcotest.test_case "automaton = iterated residuation" `Quick
      test_automaton_acceptance_matches_semantics;
    Alcotest.test_case "Π(D) membership (Definition 3)" `Quick test_accepted_paths;
    Alcotest.test_case "trigger obligations" `Quick test_required_literals;
    qtest ~count:150 "Theorem 1: symbolic residuation is sound" gen_expr_lit
      (fun (d, x) -> Residue.agrees_with_oracle d x);
    qtest ~count:100 "residuation distributes over + (rule 4)" gen_expr_lit
      (fun (d, x) ->
        Equiv.equal
          (Residue.symbolic (Expr.choice d f) x)
          (Expr.choice (Residue.symbolic d x) (Residue.symbolic f x)));
    qtest ~count:100 "residuation distributes over | (rule 5)" gen_expr_lit
      (fun (d, x) ->
        Equiv.equal
          (Residue.symbolic (Expr.conj d f) x)
          (Expr.conj (Residue.symbolic d x) (Residue.symbolic f x)));
    qtest ~count:60 "catalog dependencies have sound residuals"
      (QCheck2.Gen.pair (QCheck2.Gen.oneofl Catalog.named) gen_literal)
      (fun ((_, d), x) -> Residue.agrees_with_oracle d x);
  ]
