(* Knowledge-based guard evaluation: the actor's decision procedure. *)

open Wf_core
open Helpers

let status_testable =
  Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with
        | Knowledge.True -> "True"
        | Knowledge.False -> "False"
        | Knowledge.Unknown -> "Unknown"))
    ( = )

let k_of occs promises =
  let k =
    List.fold_left
      (fun k (name, seqno) -> Knowledge.occurred (lit name) ~seqno k)
      Knowledge.empty occs
  in
  List.fold_left (fun k name -> Knowledge.promised (lit name) k) k promises

let test_basic_status () =
  let gd = Guard.has (lit "e") in
  check status_testable "unknown initially" Knowledge.Unknown
    (Knowledge.status Knowledge.empty gd);
  check status_testable "true after occurrence" Knowledge.True
    (Knowledge.status (k_of [ ("e", 1) ] []) gd);
  check status_testable "false after complement" Knowledge.False
    (Knowledge.status (k_of [ ("~e", 1) ] []) gd)

let test_promise_rules () =
  (* The proof rules of Section 4.3: a promise discharges ◇e, leaves □e
     and ¬e undecided. *)
  let k = k_of [] [ "e" ] in
  check status_testable "◇e true" Knowledge.True
    (Knowledge.status k (Guard.will (lit "e")));
  check status_testable "□e unknown" Knowledge.Unknown
    (Knowledge.status k (Guard.has (lit "e")));
  check status_testable "¬e unknown" Knowledge.Unknown
    (Knowledge.status k (Guard.hasnt (lit "e")));
  check status_testable "◇ē false" Knowledge.False
    (Knowledge.status k (Guard.will (lit "~e")))

let test_reservation () =
  let reserved = Symbol.Set.singleton (Symbol.make "e") in
  check status_testable "¬e true under reservation" Knowledge.True
    (Knowledge.status ~reserved Knowledge.empty (Guard.hasnt (lit "e")));
  check status_testable "□e false under reservation... stays unknown"
    Knowledge.Unknown
    (Knowledge.status ~reserved Knowledge.empty (Guard.has (lit "e")));
  (* promise + reservation pins situation C: ¬e|◇e becomes true. *)
  let both = Guard.conj (Guard.hasnt (lit "e")) (Guard.will (lit "e")) in
  check status_testable "¬e|◇e unknown with promise alone" Knowledge.Unknown
    (Knowledge.status (k_of [] [ "e" ]) both);
  check status_testable "¬e|◇e true with promise + reservation" Knowledge.True
    (Knowledge.status ~reserved (k_of [] [ "e" ]) both)

let test_never () =
  (* Universally-quantified fresh instances: events never occur. *)
  let never = Symbol.Set.singleton (Symbol.make "e") in
  check status_testable "¬e true" Knowledge.True
    (Knowledge.status ~never Knowledge.empty (Guard.hasnt (lit "e")));
  check status_testable "◇e false" Knowledge.False
    (Knowledge.status ~never Knowledge.empty (Guard.will (lit "e")));
  check status_testable "◇ē true" Knowledge.True
    (Knowledge.status ~never Knowledge.empty (Guard.will (lit "~e")));
  check status_testable "□ē false (not yet)" Knowledge.False
    (Knowledge.status ~never Knowledge.empty (Guard.has (lit "~e")))

let test_pending_order () =
  let tau = Guard.will_term (Option.get (Term.make [ lit "e"; lit "f" ])) in
  check status_testable "unknown initially" Knowledge.Unknown
    (Knowledge.status Knowledge.empty tau);
  check status_testable "e then f true" Knowledge.True
    (Knowledge.status (k_of [ ("e", 1); ("f", 2) ] []) tau);
  check status_testable "f before e false" Knowledge.False
    (Knowledge.status (k_of [ ("e", 2); ("f", 1) ] []) tau);
  check status_testable "f alone false (gap)" Knowledge.False
    (Knowledge.status (k_of [ ("f", 1) ] []) tau);
  check status_testable "e alone still unknown" Knowledge.Unknown
    (Knowledge.status (k_of [ ("e", 1) ] []) tau);
  check status_testable "complement kills" Knowledge.False
    (Knowledge.status (k_of [ ("~f", 1) ] []) tau)

let test_reorder_robustness () =
  (* Assimilation order does not matter: the seqno log decides. *)
  let tau = Guard.will_term (Option.get (Term.make [ lit "e"; lit "f" ])) in
  let k1 = k_of [ ("e", 1); ("f", 2) ] [] in
  let k2 = k_of [ ("f", 2); ("e", 1) ] [] in
  check status_testable "same verdict either arrival order"
    (Knowledge.status k1 tau) (Knowledge.status k2 tau)

let test_cover_exactness () =
  (* □x + □x̄ + (¬x|¬x̄) covers all situations: True with no knowledge. *)
  let gd =
    Guard.sum_all
      [
        Guard.has (lit "e");
        Guard.has (lit "~e");
        Guard.conj (Guard.hasnt (lit "e")) (Guard.hasnt (lit "~e"));
      ]
  in
  check status_testable "cover detects tautology" Knowledge.True
    (Knowledge.status Knowledge.empty gd);
  (* The G(s_cancel) shape from the travel workflow. *)
  let gd2 =
    Guard.sum_all
      [
        Guard.has (lit "c");
        Guard.has (lit "~c");
        Guard.conj_all
          [ Guard.hasnt (lit "b"); Guard.hasnt (lit "~b");
            Guard.hasnt (lit "c"); Guard.hasnt (lit "~c") ];
        Guard.has (lit "b");
        Guard.has (lit "~b");
      ]
  in
  check status_testable "two-symbol cover" Knowledge.True
    (Knowledge.status Knowledge.empty gd2)

let test_needs () =
  (* ¬f: reservation; ◇f: promise; □f: wait. *)
  let needs g = Knowledge.needs Knowledge.empty g in
  (match needs (Guard.hasnt (lit "f")) with
  | [ n ] ->
      checkb "reserve offered" (n.Knowledge.reserves = [ Symbol.make "f" ])
  | _ -> Alcotest.fail "expected one product");
  (match needs (Guard.will (lit "f")) with
  | [ n ] ->
      checkb "promise offered"
        (List.exists (Literal.equal (lit "f")) n.Knowledge.promises)
  | _ -> Alcotest.fail "expected one product");
  (match needs (Guard.has (lit "f")) with
  | [ n ] ->
      checkb "nothing but waiting"
        (n.Knowledge.promises = [] && n.Knowledge.reserves = [])
  | _ -> Alcotest.fail "expected one product");
  (* combination mask ¬f|◇f = {C}: reservation offered so a promise can
     then pin C. *)
  (match needs (Guard.conj (Guard.hasnt (lit "f")) (Guard.will (lit "f"))) with
  | [ n ] -> checkb "combo offers reserve" (n.Knowledge.reserves = [ Symbol.make "f" ])
  | _ -> Alcotest.fail "expected one product")

(* Property: status True implies the guard really holds at the firing
   instant on every trace consistent with the knowledge. *)
let status_true_sound (x, prefix_raw) =
  let gd = Guard.will_nf (Nf.of_expr x) in
  let alpha =
    Symbol.Set.union (Expr.symbols x) (Universe.of_names [ "e"; "f" ])
  in
  (* Build knowledge from a well-formed prefix. *)
  let prefix = if Trace.well_formed prefix_raw then prefix_raw else [] in
  let k =
    List.fold_left
      (fun (k, i) l -> (Knowledge.occurred l ~seqno:i k, i + 1))
      (Knowledge.empty, 1) prefix
    |> fst
  in
  match Knowledge.status k gd with
  | Knowledge.True ->
      (* Every maximal trace that begins with exactly the known prefix
         satisfies the guard at the prefix's end. *)
      List.for_all
        (fun u ->
          let n = List.length prefix in
          (not (Trace.equal (Trace.prefix n u) prefix))
          || Guard.eval u n gd)
        (Universe.maximal_traces alpha)
  | Knowledge.False | Knowledge.Unknown -> true

let suite =
  [
    Alcotest.test_case "basic status" `Quick test_basic_status;
    Alcotest.test_case "promise proof rules" `Quick test_promise_rules;
    Alcotest.test_case "reservations" `Quick test_reservation;
    Alcotest.test_case "never-occurring instances" `Quick test_never;
    Alcotest.test_case "pending order sensitivity" `Quick test_pending_order;
    Alcotest.test_case "arrival-order robustness" `Quick test_reorder_robustness;
    Alcotest.test_case "exact cover detection" `Quick test_cover_exactness;
    Alcotest.test_case "needs analysis" `Quick test_needs;
    qtest ~count:150 "status True is sound"
      (QCheck2.Gen.pair gen_expr (gen_trace_over alpha_ef))
      status_true_sound;
  ]
