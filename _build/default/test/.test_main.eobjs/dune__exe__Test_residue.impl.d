test/test_residue.ml: Alcotest Automaton Catalog Equiv Expr Helpers List Literal Nf Paths Printf QCheck2 Residue Trace Universe Wf_core
