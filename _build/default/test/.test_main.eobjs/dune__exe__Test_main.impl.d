test/test_main.ml: Alcotest Test_algebra Test_core Test_guard Test_knowledge Test_lang Test_param Test_residue Test_sched Test_sim Test_store Test_synth Test_tasks Test_temporal
