test/test_synth.ml: Alcotest Catalog Compile Correctness Expr Formula Fun Guard Helpers List Literal Printf QCheck2 Semantics Symbol Synth Theorems Trace Tsemantics Universe Wf_core
