test/helpers.ml: Alcotest Expr Literal QCheck2 QCheck_alcotest String Trace Universe Wf_core
