test/test_core.ml: Alcotest Fun Helpers List Literal Printf Symbol Trace Universe Wf_core
