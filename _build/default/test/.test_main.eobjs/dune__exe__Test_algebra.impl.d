test/test_algebra.ml: Alcotest Catalog Equiv Expr Helpers List Literal Nf Option Semantics Term Trace Universe Wf_core
