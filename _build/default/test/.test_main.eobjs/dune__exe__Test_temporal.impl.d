test/test_temporal.ml: Alcotest Array Catalog Expr Format Formula Helpers List Literal Printf QCheck2 Semantics Symbol Symbol_state Tables Trace Tsemantics Universe Wf_core
