test/test_store.ml: Alcotest Helpers Kv List QCheck2 Resource Result Txn Wf_store
