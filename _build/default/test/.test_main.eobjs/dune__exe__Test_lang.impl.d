test/test_lang.ml: Alcotest Catalog Either Elaborate Equiv Expr Helpers Lexer List Parser Ptemplate Symbol Token Wf_core Wf_lang Wf_tasks
