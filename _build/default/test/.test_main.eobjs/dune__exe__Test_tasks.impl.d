test/test_tasks.ml: Agent Alcotest Attribute Catalog Helpers List Literal Result Symbol Task_model Wf_core Wf_tasks Workflow_def
