test/test_guard.ml: Alcotest Expr Formula Fun Guard Helpers List Literal Nf Option Printf QCheck2 Semantics Symbol Term Trace Tsemantics Universe Wf_core
