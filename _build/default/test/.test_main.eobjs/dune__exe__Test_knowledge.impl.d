test/test_knowledge.ml: Alcotest Expr Format Guard Helpers Knowledge List Literal Nf Option QCheck2 Symbol Term Trace Universe Wf_core
