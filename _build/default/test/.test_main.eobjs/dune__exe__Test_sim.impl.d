test/test_sim.ml: Alcotest Heap Helpers List Netsim QCheck2 Rng Stats Wf_sim
