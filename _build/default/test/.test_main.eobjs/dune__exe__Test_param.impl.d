test/test_param.ml: Alcotest Array Catalog Equiv Expr Guard Helpers Int64 Knowledge List Literal Param_driver Param_sched Printf Ptemplate Symbol Trace Wf_core Wf_scheduler Wf_sim Wf_tasks
