test/test_sched.ml: Agent Alcotest Array Catalog Central_sched Event_sched Expr Helpers Int64 List Literal Printf Symbol Task_model Trace Wf_core Wf_scheduler Wf_sim Wf_tasks Workflow_def
