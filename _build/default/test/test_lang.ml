(* The workflow specification language: lexer, parser, elaborator. *)

open Wf_core
open Wf_lang
open Helpers

let parse_expr_ground src =
  match Elaborate.expr_of_ast (Parser.parse_expr src) with
  | Either.Left e -> e
  | Either.Right _ -> Alcotest.fail ("unexpected template: " ^ src)

let test_lexer () =
  let toks = List.map fst (Lexer.tokens "~e + f . (g | T) # comment\n0") in
  check Alcotest.int "token count" 12 (List.length toks);
  checkb "tilde first" (List.hd toks = Token.TILDE);
  checkb "comment skipped"
    (not (List.exists (function Token.IDENT "comment" -> true | _ -> false) toks))

let test_lexer_errors () =
  checkb "bad char"
    (try
       ignore (Lexer.tokens "e $ f");
       false
     with Lexer.Error _ -> true);
  checkb "unterminated string"
    (try
       ignore (Lexer.tokens {|script "abc|});
       false
     with Lexer.Error _ -> true)

let test_expr_parsing () =
  checkb "D< parses"
    (Equiv.equal (parse_expr_ground "~e + ~f + e.f") Catalog.d_lt);
  checkb "precedence: . over |"
    (Equiv.equal (parse_expr_ground "e.f | g") (Expr.conj (Expr.seq e f) g));
  checkb "precedence: | over +"
    (Equiv.equal (parse_expr_ground "e | f + g") (Expr.choice (Expr.conj e f) g));
  checkb "parens"
    (Equiv.equal (parse_expr_ground "(e + f).g") (Expr.seq (Expr.choice e f) g));
  checkb "constants"
    (Equiv.equal (parse_expr_ground "T | 0 + e") e)

let test_pp_parse_roundtrip () =
  (* The printed form of every catalog dependency parses back to an
     equivalent expression. *)
  List.iter
    (fun (name, d) ->
      checkb (name ^ " roundtrips")
        (Equiv.equal (parse_expr_ground (Expr.to_string d)) d))
    Catalog.named

let test_parse_errors () =
  List.iter
    (fun src ->
      checkb ("rejects " ^ src)
        (try
           ignore (Parser.parse_expr src);
           false
         with Parser.Error _ -> true))
    [ "e +"; "( e"; "e ."; "+ e"; "e f" ]

let travel_spec =
  {|
workflow travel {
  task buy    : transaction   at 0;
  task book   : compensatable at 1 script "commit";
  task cancel : compensatable at 2 script "commit";
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
|}

let test_elaborate_travel () =
  let { Elaborate.def; templates } = Elaborate.load_string travel_spec in
  checkb "no templates" (templates = []);
  check Alcotest.int "three tasks" 3 (List.length def.Wf_tasks.Workflow_def.tasks);
  check Alcotest.int "three deps" 3
    (List.length def.Wf_tasks.Workflow_def.deps);
  (match Wf_tasks.Workflow_def.validate def with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* The parsed deps match the catalog's rendering of Example 4. *)
  List.iter2
    (fun (_, parsed) (_, expected) ->
      checkb "dependency matches Example 4" (Equiv.equal parsed expected))
    def.Wf_tasks.Workflow_def.deps
    (Catalog.travel_workflow ())

let test_macros () =
  let spec =
    {|
workflow m {
  task t1 : transaction at 0;
  task t2 : transaction at 1;
  dep a: c_t1 < c_t2;
  dep b: c_t1 -> c_t2;
  dep c: use exclusion(t1, t2);
}
|}
  in
  let { Elaborate.def; _ } = Elaborate.load_string spec in
  (match def.Wf_tasks.Workflow_def.deps with
  | [ (_, a); (_, b); (_, c) ] ->
      checkb "order macro" (Equiv.equal a (Catalog.commit_order "t1" "t2"));
      checkb "arrow macro" (Equiv.equal b (Catalog.strong_commit "t1" "t2"));
      checkb "use macro" (Equiv.equal c (Catalog.exclusion "t1" "t2"))
  | _ -> Alcotest.fail "expected three deps")

let test_attrs_and_options () =
  let spec =
    {|
workflow o {
  task t : transaction at 2 script "start,commit" onreject "commit->abort";
  task l : loop at 1 loop 3;
  dep d: c_t -> b_l[1];
  attr c_t triggerable nondelayable;
}
|}
  in
  let { Elaborate.def; _ } = Elaborate.load_string spec in
  let attr = Wf_tasks.Workflow_def.attribute_of def (Symbol.make "c_t") in
  checkb "triggerable override" attr.Wf_tasks.Attribute.triggerable;
  checkb "nondelayable override" (not attr.Wf_tasks.Attribute.delayable);
  let t =
    List.find
      (fun (t : Wf_tasks.Workflow_def.task) -> t.Wf_tasks.Workflow_def.instance = "t")
      def.Wf_tasks.Workflow_def.tasks
  in
  check Alcotest.int "site" 2 t.Wf_tasks.Workflow_def.site;
  check Alcotest.(list string) "script steps" [ "start"; "commit" ]
    t.Wf_tasks.Workflow_def.script.Wf_tasks.Agent.steps;
  check Alcotest.(option string) "onreject" (Some "abort")
    (t.Wf_tasks.Workflow_def.script.Wf_tasks.Agent.on_reject "commit")

let test_parametrized_spec () =
  let spec =
    {|
workflow mx {
  task t1 : loop at 0 loop 2 param;
  task t2 : loop at 1 loop 2 param;
  dep m: b_t2[y].b_t1[x] + ~e_t1[x] + ~b_t2[y] + e_t1[x].b_t2[y];
}
|}
  in
  let { Elaborate.def; templates } = Elaborate.load_string spec in
  check Alcotest.int "one template" 1 (List.length templates);
  checkb "no ground deps" (def.Wf_tasks.Workflow_def.deps = []);
  let _, t = List.hd templates in
  check Alcotest.(list string) "vars" [ "y"; "x" ] (Ptemplate.vars t);
  checkb "matches the catalog template"
    (Ptemplate.atoms t
    = Ptemplate.atoms (Ptemplate.mutual_exclusion_template ~t1:"t1" ~t2:"t2"))

let test_two_phase_spec () =
  let spec =
    {|
workflow tp {
  task coord : rda at 0 script "start,precommit,commit" onreject "commit->abort";
  task p1    : rda at 1;
  dep prep: use commit_after_prepared(coord, p1);
  dep dec:  use commit_on_commit(coord, p1);
}
|}
  in
  let { Elaborate.def; templates } = Elaborate.load_string spec in
  checkb "ground spec" (templates = []);
  (match Wf_tasks.Workflow_def.validate def with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match def.Wf_tasks.Workflow_def.deps with
  | [ (_, prep); (_, dec) ] ->
      checkb "prep macro"
        (Equiv.equal prep (Catalog.commit_after_prepared "coord" "p1"));
      checkb "dec macro" (Equiv.equal dec (Catalog.commit_on_commit "coord" "p1"))
  | _ -> Alcotest.fail "expected two deps"

let test_elaborate_errors () =
  List.iter
    (fun (name, spec) ->
      checkb name
        (try
           ignore (Elaborate.load_string spec);
           false
         with Elaborate.Error _ -> true))
    [
      ( "unknown model",
        {|workflow w { task t : warp at 0; }|} );
      ( "unknown macro",
        {|workflow w { task t1 : transaction; task t2 : transaction; dep d: use frobnicate(t1, t2); }|}
      );
      ( "unknown flag",
        {|workflow w { task t : transaction; dep d: c_t -> c_t; attr c_t sparkly; }|}
      );
    ]

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "expression parsing" `Quick test_expr_parsing;
    Alcotest.test_case "print/parse roundtrip" `Quick test_pp_parse_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "elaborate travel" `Quick test_elaborate_travel;
    Alcotest.test_case "Klein and catalog macros" `Quick test_macros;
    Alcotest.test_case "attributes and task options" `Quick test_attrs_and_options;
    Alcotest.test_case "parametrized specifications" `Quick test_parametrized_spec;
    Alcotest.test_case "two-phase spec" `Quick test_two_phase_spec;
    Alcotest.test_case "elaboration errors" `Quick test_elaborate_errors;
    qtest ~count:100 "printed expressions reparse equivalently" gen_expr
      (fun x ->
        match Elaborate.expr_of_ast (Parser.parse_expr (Expr.to_string x)) with
        | Either.Left back -> Equiv.equal back x
        | Either.Right _ -> false);
  ]
