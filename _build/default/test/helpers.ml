(* Shared test helpers: generators for random algebra expressions and
   traces over small alphabets, and Alcotest testables. *)

open Wf_core

let check = Alcotest.check
let checkb msg = Alcotest.check Alcotest.bool msg true

let expr_testable = Alcotest.testable Expr.pp Expr.equal_syntactic
let trace_testable = Alcotest.testable Trace.pp Trace.equal

let lit name =
  if String.length name > 0 && name.[0] = '~' then
    Literal.complement_of (String.sub name 1 (String.length name - 1))
  else Literal.event name

let e = Expr.event "e"
let f = Expr.event "f"
let g = Expr.event "g"
let ne = Expr.complement "e"
let nf = Expr.complement "f"
let ng = Expr.complement "g"

let alpha_ef = Universe.of_names [ "e"; "f" ]
let alpha_efg = Universe.of_names [ "e"; "f"; "g" ]

(* --- QCheck generators --------------------------------------------------- *)

let symbol_names = [ "e"; "f"; "g" ]

let gen_literal : Literal.t QCheck2.Gen.t =
  QCheck2.Gen.map2
    (fun name pos ->
      if pos then Literal.event name else Literal.complement_of name)
    (QCheck2.Gen.oneofl symbol_names)
    QCheck2.Gen.bool

(* Random expressions biased toward the shapes dependencies take:
   sums of short sequences, occasional conjunctions. *)
let gen_expr : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof [ map Expr.atom gen_literal; return Expr.top; return Expr.zero ]
         else
           frequency
             [
               (2, map Expr.atom gen_literal);
               (3, map2 Expr.choice (self (n / 2)) (self (n / 2)));
               (3, map2 Expr.seq (self (n / 2)) (self (n / 2)));
               (1, map2 Expr.conj (self (n / 2)) (self (n / 2)));
             ])

let gen_trace_over alphabet : Trace.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl (Universe.traces alphabet)

let gen_maximal_trace alphabet : Trace.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl (Universe.maximal_traces alphabet)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
