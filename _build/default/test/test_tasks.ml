(* Task models (Figure 1), agents, and workflow definitions. *)

open Wf_core
open Wf_tasks
open Helpers

let test_models_validate () =
  List.iter
    (fun m ->
      match Task_model.validate m with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (m.Task_model.name ^ ": " ^ msg))
    [
      Task_model.typical_application;
      Task_model.transaction;
      Task_model.rda_transaction;
      Task_model.compensatable_transaction;
      Task_model.loop_task;
    ]

let test_validate_catches_errors () =
  let bad =
    {
      Task_model.transaction with
      Task_model.init = "nowhere";
      significant = [ ("phantom", "p", Attribute.default) ];
    }
  in
  checkb "bad model rejected" (Result.is_error (Task_model.validate bad))

let test_symbols () =
  let m = Task_model.transaction in
  check Alcotest.string "commit symbol" "c_buy"
    (Symbol.name (Task_model.symbol_of_event m ~instance:"buy" "commit"));
  check Alcotest.string "parametrized instance" "s_buy(42)"
    (Symbol.name (Task_model.symbol_of_event m ~instance:"buy(42)" "start"));
  check
    Alcotest.(option string)
    "event back from symbol" (Some "commit")
    (Task_model.event_of_symbol m ~instance:"buy" (Symbol.make "c_buy"))

let test_reachability () =
  let m = Task_model.transaction in
  check
    Alcotest.(list string)
    "enabled initially" [ "start" ]
    (Task_model.enabled m "initial");
  checkb "abort unreachable after commit"
    (List.mem "abort" (Task_model.unreachable_events m "committed"));
  checkb "commit reachable from active"
    (List.mem "commit" (Task_model.reachable_events m "active"));
  (* loops never exhaust events *)
  check
    Alcotest.(list string)
    "loop task never loses events" []
    (Task_model.unreachable_events Task_model.loop_task "critical")

let test_agent_happy_path () =
  let a =
    Agent.create ~instance:"t" ~model:Task_model.transaction
      ~script:(Agent.transactional ()) ()
  in
  (match Agent.want a with
  | Some (sym, attr) ->
      check Alcotest.string "wants start" "s_t" (Symbol.name sym);
      checkb "start triggerable" attr.Attribute.triggerable
  | None -> Alcotest.fail "expected start");
  let complements = Agent.on_accepted a (Symbol.make "s_t") in
  check Alcotest.(list string) "no complements after start" []
    (List.map Literal.to_string complements);
  (match Agent.want a with
  | Some (sym, _) -> check Alcotest.string "wants commit" "c_t" (Symbol.name sym)
  | None -> Alcotest.fail "expected commit");
  let complements = Agent.on_accepted a (Symbol.make "c_t") in
  check
    Alcotest.(list string)
    "commit precludes abort" [ "~a_t" ]
    (List.map Literal.to_string complements);
  checkb "finished" (Agent.finished a)

let test_agent_fallback () =
  let a =
    Agent.create ~instance:"t" ~model:Task_model.transaction
      ~script:(Agent.transactional ()) ()
  in
  ignore (Agent.on_accepted a (Symbol.make "s_t"));
  Agent.on_rejected a (Symbol.make "c_t");
  (match Agent.want a with
  | Some (sym, attr) ->
      check Alcotest.string "falls back to abort" "a_t" (Symbol.name sym);
      checkb "abort uncontrollable" (not attr.Attribute.controllable)
  | None -> Alcotest.fail "expected abort fallback");
  let complements = Agent.on_accepted a (Symbol.make "a_t") in
  check
    Alcotest.(list string)
    "abort precludes commit" [ "~c_t" ]
    (List.map Literal.to_string complements)

let test_agent_give_up () =
  let a =
    Agent.create ~instance:"t" ~model:Task_model.transaction
      ~script:(Agent.straight_line [ "start"; "commit" ]) ()
  in
  ignore (Agent.on_accepted a (Symbol.make "s_t"));
  Agent.on_rejected a (Symbol.make "c_t");
  checkb "no fallback: gives up" (Agent.want a = None);
  checkb "finished after giving up" (Agent.finished a)

let test_agent_trigger () =
  let a =
    Agent.create ~instance:"cancel" ~model:Task_model.compensatable_transaction
      ~script:(Agent.straight_line [ "commit" ]) ()
  in
  checkb "cannot start by script" (Agent.want a = None);
  (match Agent.trigger a (Symbol.make "s_cancel") with
  | Some _ -> ()
  | None -> Alcotest.fail "trigger should succeed");
  (match Agent.want a with
  | Some (sym, _) -> check Alcotest.string "now wants commit" "c_cancel" (Symbol.name sym)
  | None -> Alcotest.fail "expected commit after trigger");
  checkb "illegal trigger refused" (Agent.trigger a (Symbol.make "s_cancel") = None)

let test_agent_loops_parametrize () =
  let a =
    Agent.create ~instance:"t1" ~model:Task_model.loop_task
      ~script:(Agent.looping 2) ~parametrize:true ()
  in
  (match Agent.want a with
  | Some (sym, _) -> check Alcotest.string "first token" "b_t1(1)" (Symbol.name sym)
  | None -> Alcotest.fail "expected enter");
  ignore (Agent.on_accepted a (Symbol.parametrized "b_t1" [ "1" ]));
  ignore (Agent.on_accepted a (Symbol.parametrized "e_t1" [ "1" ]));
  (match Agent.want a with
  | Some (sym, _) ->
      check Alcotest.string "second token" "b_t1(2)" (Symbol.name sym)
  | None -> Alcotest.fail "expected second round");
  checkb "parametrized agents emit no complements"
    (Agent.undecided_complements a = [])

let test_agent_undecided_complements () =
  let a =
    Agent.create ~instance:"t" ~model:Task_model.transaction
      ~script:(Agent.straight_line [ "start" ]) ()
  in
  ignore (Agent.on_accepted a (Symbol.make "s_t"));
  let names =
    List.map Literal.to_string (Agent.undecided_complements a)
  in
  checkb "commit undecided" (List.mem "~c_t" names);
  checkb "abort undecided" (List.mem "~a_t" names);
  checkb "start decided" (not (List.mem "~s_t" names))

let travel_def () =
  Workflow_def.make ~name:"travel"
    ~tasks:
      [
        Workflow_def.task ~instance:"buy" ~model:Task_model.transaction ~site:0 ();
        Workflow_def.task ~instance:"book"
          ~model:Task_model.compensatable_transaction ~site:1 ();
        Workflow_def.task ~instance:"cancel"
          ~model:Task_model.compensatable_transaction ~site:2 ();
      ]
    ~deps:(Catalog.travel_workflow ())
    ()

let test_workflow_def () =
  let wf = travel_def () in
  (match Workflow_def.validate wf with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "sites" 3 (Workflow_def.num_sites wf);
  check Alcotest.int "site of c_book" 1 (Workflow_def.site_of wf (Symbol.make "c_book"));
  (match Workflow_def.owner_of wf (Symbol.make "s_cancel") with
  | Some t -> check Alcotest.string "owner" "cancel" t.Workflow_def.instance
  | None -> Alcotest.fail "owner expected");
  let attr = Workflow_def.attribute_of wf (Symbol.make "s_book") in
  checkb "start triggerable from model" attr.Attribute.triggerable;
  let attr = Workflow_def.attribute_of wf (Symbol.make "a_buy") in
  checkb "abort uncontrollable" (not attr.Attribute.controllable)

let test_workflow_def_validation () =
  let wf =
    Workflow_def.make ~name:"bad"
      ~tasks:
        [ Workflow_def.task ~instance:"t" ~model:Task_model.transaction () ]
      ~deps:[ ("d", Catalog.d_arrow) ] (* mentions e, f: unowned *)
      ()
  in
  checkb "unowned symbols rejected" (Result.is_error (Workflow_def.validate wf));
  let dup =
    Workflow_def.make ~name:"dup"
      ~tasks:
        [
          Workflow_def.task ~instance:"t" ~model:Task_model.transaction ();
          Workflow_def.task ~instance:"t" ~model:Task_model.transaction ();
        ]
      ~deps:[] ()
  in
  checkb "duplicate instances rejected" (Result.is_error (Workflow_def.validate dup))

let test_attributes () =
  checkb "default controllable" Attribute.default.Attribute.controllable;
  checkb "uncontrollable not rejectable"
    (not Attribute.uncontrollable.Attribute.rejectable);
  checkb "triggerable is controllable" Attribute.triggerable.Attribute.controllable

let suite =
  [
    Alcotest.test_case "models validate" `Quick test_models_validate;
    Alcotest.test_case "validation catches errors" `Quick test_validate_catches_errors;
    Alcotest.test_case "symbol naming" `Quick test_symbols;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "agent happy path" `Quick test_agent_happy_path;
    Alcotest.test_case "agent rejection fallback" `Quick test_agent_fallback;
    Alcotest.test_case "agent gives up" `Quick test_agent_give_up;
    Alcotest.test_case "agent triggering" `Quick test_agent_trigger;
    Alcotest.test_case "looping agents parametrize tokens" `Quick
      test_agent_loops_parametrize;
    Alcotest.test_case "undecided complements" `Quick test_agent_undecided_complements;
    Alcotest.test_case "workflow definitions" `Quick test_workflow_def;
    Alcotest.test_case "workflow validation" `Quick test_workflow_def_validation;
    Alcotest.test_case "attributes" `Quick test_attributes;
  ]
