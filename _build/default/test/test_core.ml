(* Symbols, literals, traces, and universe enumeration. *)

open Wf_core
open Helpers

let test_symbol_identity () =
  checkb "same name same symbol" (Symbol.equal (Symbol.make "e") (Symbol.make "e"));
  checkb "different names differ"
    (not (Symbol.equal (Symbol.make "e") (Symbol.make "f")));
  check Alcotest.string "plain name" "e" (Symbol.name (Symbol.make "e"));
  check Alcotest.string "parametrized name" "f(3,4)"
    (Symbol.name (Symbol.parametrized "f" [ "3"; "4" ]));
  check Alcotest.string "base strips args" "f"
    (Symbol.base (Symbol.parametrized "f" [ "3" ]));
  check
    Alcotest.(list string)
    "args recovered" [ "3" ]
    (Symbol.args (Symbol.parametrized "f" [ "3" ]))

let test_symbol_param_identity () =
  checkb "same params equal"
    (Symbol.equal (Symbol.parametrized "f" [ "1" ]) (Symbol.parametrized "f" [ "1" ]));
  checkb "different params differ"
    (not (Symbol.equal (Symbol.parametrized "f" [ "1" ]) (Symbol.parametrized "f" [ "2" ])));
  checkb "plain vs parametrized differ"
    (not (Symbol.equal (Symbol.make "f") (Symbol.parametrized "f" [ "1" ])))

let test_literal_complement () =
  let l = Literal.event "e" in
  checkb "complement flips" (not (Literal.is_pos (Literal.complement l)));
  checkb "involution: ē̄ = e"
    (Literal.equal l (Literal.complement (Literal.complement l)));
  check Alcotest.string "pp positive" "e" (Literal.to_string l);
  check Alcotest.string "pp negative" "~e"
    (Literal.to_string (Literal.complement l))

let test_trace_well_formed () =
  checkb "empty ok" (Trace.well_formed Trace.empty);
  checkb "distinct ok" (Trace.well_formed (Trace.of_events [ "e"; "~f" ]));
  checkb "repeat rejected" (not (Trace.well_formed (Trace.of_events [ "e"; "e" ])));
  checkb "complement pair rejected"
    (not (Trace.well_formed (Trace.of_events [ "e"; "~e" ])))

let test_trace_maximal () =
  let alpha = alpha_ef in
  checkb "both decided is maximal"
    (Trace.maximal alpha (Trace.of_events [ "e"; "~f" ]));
  checkb "partial is not maximal"
    (not (Trace.maximal alpha (Trace.of_events [ "e" ])))

let test_trace_ops () =
  let u = Trace.of_events [ "e"; "~f"; "g" ] in
  check Alcotest.int "length" 3 (Trace.length u);
  check trace_testable "prefix 2" (Trace.of_events [ "e"; "~f" ]) (Trace.prefix 2 u);
  check trace_testable "suffix 1" (Trace.of_events [ "~f"; "g" ]) (Trace.suffix 1 u);
  check Alcotest.int "splits count" 4 (List.length (Trace.splits u));
  check
    Alcotest.(option int)
    "index of ~f" (Some 2)
    (Trace.index_of (lit "~f") u);
  check Alcotest.(option int) "index of missing" None (Trace.index_of (lit "f") u)

let test_trace_append () =
  let u = Trace.of_events [ "e" ] and v = Trace.of_events [ "f" ] in
  checkb "disjoint appends" (Trace.append u v <> None);
  checkb "clash refuses" (Trace.append u (Trace.of_events [ "~e" ]) = None)

let test_universe_example1 () =
  (* Example 1: |U_E| = 13 for Γ = {e, ē, f, f̄}. *)
  check Alcotest.int "example 1 size" 13 (List.length (Universe.traces alpha_ef));
  checkb "empty trace included"
    (List.exists (Trace.equal Trace.empty) (Universe.traces alpha_ef));
  checkb "all well formed"
    (List.for_all Trace.well_formed (Universe.traces alpha_ef))

let test_universe_counts () =
  List.iter
    (fun n ->
      let names = List.filteri (fun i _ -> i < n) [ "a"; "b"; "c"; "d" ] in
      let alpha = Universe.of_names names in
      check Alcotest.int
        (Printf.sprintf "count %d" n)
        (Universe.count n)
        (List.length (Universe.traces alpha));
      check Alcotest.int
        (Printf.sprintf "count_maximal %d" n)
        (Universe.count_maximal n)
        (List.length (Universe.maximal_traces alpha)))
    [ 0; 1; 2; 3 ]

let test_universe_maximal () =
  let ms = Universe.maximal_traces alpha_ef in
  check Alcotest.int "2^2 * 2! maximal traces" 8 (List.length ms);
  checkb "every maximal trace decides both symbols"
    (List.for_all (Trace.maximal alpha_ef) ms)

let suite =
  [
    Alcotest.test_case "symbol identity" `Quick test_symbol_identity;
    Alcotest.test_case "parametrized symbols" `Quick test_symbol_param_identity;
    Alcotest.test_case "literal complement" `Quick test_literal_complement;
    Alcotest.test_case "trace well-formedness" `Quick test_trace_well_formed;
    Alcotest.test_case "trace maximality" `Quick test_trace_maximal;
    Alcotest.test_case "trace operations" `Quick test_trace_ops;
    Alcotest.test_case "trace append" `Quick test_trace_append;
    Alcotest.test_case "universe of Example 1" `Quick test_universe_example1;
    Alcotest.test_case "universe counting formulas" `Quick test_universe_counts;
    Alcotest.test_case "maximal universe" `Quick test_universe_maximal;
    qtest "prefix ++ suffix = trace"
      (gen_trace_over alpha_efg)
      (fun u ->
        List.for_all
          (fun i -> Trace.equal u (Trace.prefix i u @ Trace.suffix i u))
          (List.init (Trace.length u + 1) Fun.id));
    qtest "splits recompose"
      (gen_trace_over alpha_efg)
      (fun u ->
        List.for_all (fun (v, w) -> Trace.equal u (v @ w)) (Trace.splits u));
  ]
