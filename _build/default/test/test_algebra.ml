(* The event algebra E: syntax, semantics, normal forms, equivalence. *)

open Wf_core
open Helpers

let sat events expr = Semantics.satisfies (Trace.of_events events) expr

(* --- Semantics 1-5 ------------------------------------------------------- *)

let test_atom_semantics () =
  checkb "e on ⟨e⟩" (sat [ "e" ] e);
  checkb "e on ⟨f e⟩" (sat [ "f"; "e" ] e);
  checkb "not e on ⟨f⟩" (not (sat [ "f" ] e));
  checkb "~e on ⟨~e⟩" (sat [ "~e" ] ne);
  checkb "not ~e on ⟨e⟩" (not (sat [ "e" ] ne))

let test_seq_semantics () =
  let ef = Expr.seq e f in
  checkb "e.f on ⟨e f⟩" (sat [ "e"; "f" ] ef);
  checkb "e.f not on ⟨f e⟩" (not (sat [ "f"; "e" ] ef));
  checkb "e.f on ⟨e g f⟩" (sat [ "e"; "g"; "f" ] ef);
  checkb "e.f not on ⟨e⟩" (not (sat [ "e" ] ef))

let test_choice_conj_semantics () =
  checkb "e+f on ⟨f⟩" (sat [ "f" ] (Expr.choice e f));
  checkb "e|f needs both" (not (sat [ "f" ] (Expr.conj e f)));
  checkb "e|f on ⟨f e⟩" (sat [ "f"; "e" ] (Expr.conj e f));
  checkb "T everywhere" (sat [] Expr.top);
  checkb "0 nowhere" (not (sat [ "e" ] Expr.zero))

let test_example1_denotations () =
  (* Example 1: ⟦e⟧ has 5 traces, ⟦e·f⟧ = {⟨ef⟩}. *)
  check Alcotest.int "|⟦e⟧|" 5 (List.length (Semantics.denotation alpha_ef e));
  check
    Alcotest.(list trace_testable)
    "⟦e.f⟧"
    [ Trace.of_events [ "e"; "f" ] ]
    (Semantics.denotation alpha_ef (Expr.seq e f));
  checkb "e + ~e is not T (Example 1)" (not (Equiv.is_top (Expr.choice e ne)));
  checkb "e | ~e is 0 (Example 1)" (Equiv.is_zero (Expr.conj e ne))

let test_klein_examples () =
  (* Example 2: D→ satisfied iff e absent or f present. *)
  let d = Catalog.d_arrow in
  checkb "⟨~e⟩ ⊨ D→" (sat [ "~e" ] d);
  checkb "⟨e f⟩ ⊨ D→" (sat [ "e"; "f" ] d);
  checkb "⟨f e⟩ ⊨ D→ (order free)" (sat [ "f"; "e" ] d);
  checkb "⟨e ~f⟩ ⊭ D→" (not (sat [ "e"; "~f" ] d));
  (* Example 3: D< forbids f-before-e when both occur. *)
  let dlt = Catalog.d_lt in
  checkb "⟨e f⟩ ⊨ D<" (sat [ "e"; "f" ] dlt);
  checkb "⟨f e⟩ ⊭ D<" (not (sat [ "f"; "e" ] dlt));
  checkb "⟨~e f⟩ ⊨ D<" (sat [ "~e"; "f" ] dlt);
  checkb "⟨~f e⟩ ⊨ D<" (sat [ "~f"; "e" ] dlt)

(* --- algebraic laws (Section 3.2) ---------------------------------------- *)

let law name a b = checkb name (Equiv.equal a b)

let test_operator_laws () =
  let x = Expr.seq e f and y = Expr.choice f g and z = Expr.conj e g in
  law "+ associative"
    (Expr.choice x (Expr.choice y z))
    (Expr.choice (Expr.choice x y) z);
  law "+ commutative" (Expr.choice x y) (Expr.choice y x);
  law "| associative"
    (Expr.conj x (Expr.conj y z))
    (Expr.conj (Expr.conj x y) z);
  law "| commutative" (Expr.conj x y) (Expr.conj y x);
  law ". associative"
    (Expr.Seq (e, Expr.Seq (f, g)))
    (Expr.Seq (Expr.Seq (e, f), g));
  law ". distributes over +"
    (Expr.Seq (Expr.choice e f, g))
    (Expr.choice (Expr.Seq (e, g)) (Expr.Seq (f, g)));
  law ". distributes over |"
    (Expr.Seq (Expr.conj e f, g))
    (Expr.conj (Expr.Seq (e, g)) (Expr.Seq (f, g)));
  law "T identity for ." (Expr.Seq (Expr.Top, e)) e;
  law "0 annihilates ." (Expr.Seq (Expr.Zero, e)) Expr.zero

let test_smart_constructors () =
  check expr_testable "seq top" e (Expr.seq Expr.top e);
  check expr_testable "seq zero" Expr.zero (Expr.seq e Expr.zero);
  check expr_testable "choice zero" e (Expr.choice Expr.zero e);
  check expr_testable "conj top" e (Expr.conj e Expr.top);
  check expr_testable "choice top" Expr.top (Expr.choice e Expr.top);
  check expr_testable "conj zero" Expr.zero (Expr.conj e Expr.zero)

let test_literals_gamma () =
  (* Γ_E includes mentioned literals and their complements. *)
  let lits = Expr.literals (Expr.choice ne (Expr.seq e f)) in
  check Alcotest.int "Γ size" 4 (Literal.Set.cardinal lits);
  checkb "contains f̄" (Literal.Set.mem (lit "~f") lits)

let test_pp_parse_shapes () =
  check Alcotest.string "D< printed" "~e + ~f + e.f" (Expr.to_string Catalog.d_lt);
  check Alcotest.string "precedence" "(e + f).g"
    (Expr.to_string (Expr.Seq (Expr.choice e f, g)))

(* --- normal forms --------------------------------------------------------- *)

let test_nf_basic () =
  checkb "0 nf" (Nf.is_zero (Nf.of_expr Expr.zero));
  checkb "T nf" (Nf.is_top (Nf.of_expr Expr.top));
  checkb "e.~e collapses to 0"
    (Nf.is_zero (Nf.of_expr (Expr.Seq (e, ne))));
  checkb "e.e collapses to 0" (Nf.is_zero (Nf.of_expr (Expr.Seq (e, e))));
  checkb "e|~e collapses to 0" (Nf.is_zero (Nf.of_expr (Expr.Conj (e, ne))))

let test_nf_product_satisfiability () =
  let t1 = Option.get (Term.make [ lit "e"; lit "f" ]) in
  let t2 = Option.get (Term.make [ lit "f"; lit "e" ]) in
  let t3 = Option.get (Term.make [ lit "f"; lit "g" ]) in
  let t4 = Option.get (Term.make [ lit "g"; lit "e" ]) in
  checkb "consistent orders fine" (Nf.product_satisfiable [ t1; t3 ]);
  checkb "2-cycle detected" (not (Nf.product_satisfiable [ t1; t2 ]));
  checkb "3-cycle detected" (not (Nf.product_satisfiable [ t1; t3; t4 ]));
  checkb "polarity clash detected"
    (not
       (Nf.product_satisfiable
          [ Option.get (Term.make [ lit "e" ]); Option.get (Term.make [ lit "~e" ]) ]))

let test_term_satisfies () =
  let tau = Option.get (Term.make [ lit "e"; lit "f" ]) in
  checkb "in order" (Term.satisfies (Trace.of_events [ "e"; "g"; "f" ]) tau);
  checkb "wrong order" (not (Term.satisfies (Trace.of_events [ "f"; "e" ]) tau));
  checkb "missing" (not (Term.satisfies (Trace.of_events [ "e" ]) tau));
  checkb "top term everywhere" (Term.satisfies Trace.empty Term.top)

let test_two_phase_catalog () =
  let d = Catalog.commit_after_prepared "c" "p" in
  checkb "commit after prepare ok"
    (Semantics.satisfies (Trace.of_events [ "p_p"; "c_c" ]) d);
  checkb "commit before prepare violates"
    (not (Semantics.satisfies (Trace.of_events [ "c_c"; "p_p" ]) d));
  checkb "no commit is fine"
    (Semantics.satisfies (Trace.of_events [ "~c_c" ]) d);
  let d2 = Catalog.commit_on_commit "c" "p" in
  checkb "participant waits for coordinator"
    (not (Semantics.satisfies (Trace.of_events [ "c_p"; "c_c" ]) d2));
  checkb "decision order ok"
    (Semantics.satisfies (Trace.of_events [ "c_c"; "c_p" ]) d2)

let suite =
  [
    Alcotest.test_case "two-phase catalog dependencies" `Quick
      test_two_phase_catalog;
    Alcotest.test_case "atom semantics" `Quick test_atom_semantics;
    Alcotest.test_case "sequence semantics" `Quick test_seq_semantics;
    Alcotest.test_case "choice and conjunction" `Quick test_choice_conj_semantics;
    Alcotest.test_case "Example 1 denotations" `Quick test_example1_denotations;
    Alcotest.test_case "Klein primitives (Examples 2, 3)" `Quick test_klein_examples;
    Alcotest.test_case "operator laws" `Quick test_operator_laws;
    Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
    Alcotest.test_case "Γ_E computation" `Quick test_literals_gamma;
    Alcotest.test_case "pretty printing" `Quick test_pp_parse_shapes;
    Alcotest.test_case "normal-form collapses" `Quick test_nf_basic;
    Alcotest.test_case "product satisfiability" `Quick test_nf_product_satisfiability;
    Alcotest.test_case "term satisfaction" `Quick test_term_satisfies;
    qtest ~count:200 "nf preserves semantics" gen_expr (fun x ->
        Equiv.equal x (Nf.to_expr (Nf.of_expr x)));
    qtest ~count:200 "nf satisfaction agrees" gen_expr (fun x ->
        let nf_x = Nf.of_expr x in
        List.for_all
          (fun u -> Semantics.satisfies u x = Nf.satisfies u nf_x)
          (Universe.traces (Expr.symbols x)));
    qtest ~count:200 "denotation monotone under +" gen_expr (fun x ->
        Equiv.entails x (Expr.choice x f));
    qtest ~count:200 "conj entails operands" gen_expr (fun x ->
        Equiv.entails (Expr.conj x f) x);
    qtest ~count:100 "equiv is reflexive" gen_expr (fun x -> Equiv.equal x x);
  ]
