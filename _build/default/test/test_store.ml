(* The transactional store substrate. *)

open Wf_store
open Helpers

let test_kv_basic () =
  let kv = Kv.create ~name:"s" () in
  checkb "absent" (Kv.get kv "x" = None);
  check Alcotest.int "version 0" 0 (Kv.version_of kv "x");
  Kv.apply kv [ ("x", Kv.Int 1) ];
  (match Kv.get kv "x" with
  | Some (Kv.Int 1, 1) -> ()
  | _ -> Alcotest.fail "expected x=1 v1");
  Kv.apply kv [ ("x", Kv.Int 2); ("y", Kv.Str "hi") ];
  check Alcotest.int "version bumps" 2 (Kv.version_of kv "x");
  check Alcotest.(list string) "keys sorted" [ "x"; "y" ] (Kv.keys kv)

let test_txn_commit () =
  let kv = Kv.create () in
  Kv.apply kv [ ("n", Kv.Int 10) ];
  let t = Txn.begin_ kv in
  (match Txn.read t "n" with
  | Some (Kv.Int 10) -> ()
  | _ -> Alcotest.fail "read 10");
  (match Txn.incr t "n" 5 with Ok 15 -> () | _ -> Alcotest.fail "incr");
  checkb "commits" (Txn.commit t = Txn.Committed);
  (match Kv.get kv "n" with
  | Some (Kv.Int 15, _) -> ()
  | _ -> Alcotest.fail "committed value visible")

let test_txn_own_writes () =
  let kv = Kv.create () in
  let t = Txn.begin_ kv in
  Txn.write t "a" (Kv.Int 1);
  (match Txn.read t "a" with
  | Some (Kv.Int 1) -> ()
  | _ -> Alcotest.fail "reads own write");
  checkb "store untouched before commit" (Kv.get kv "a" = None)

let test_txn_conflict () =
  let kv = Kv.create () in
  Kv.apply kv [ ("n", Kv.Int 0) ];
  let t1 = Txn.begin_ kv and t2 = Txn.begin_ kv in
  ignore (Txn.incr t1 "n" 1);
  ignore (Txn.incr t2 "n" 1);
  checkb "first wins" (Txn.commit t1 = Txn.Committed);
  (match Txn.commit t2 with
  | Txn.Aborted _ -> ()
  | Txn.Committed -> Alcotest.fail "second should conflict");
  (match Kv.get kv "n" with
  | Some (Kv.Int 1, _) -> ()
  | _ -> Alcotest.fail "only one increment applied")

let test_txn_abort () =
  let kv = Kv.create () in
  let t = Txn.begin_ kv in
  Txn.write t "a" (Kv.Int 1);
  (match Txn.abort t with Txn.Aborted _ -> () | _ -> Alcotest.fail "abort");
  checkb "no effect" (Kv.get kv "a" = None);
  (match Txn.commit t with
  | Txn.Aborted _ -> ()
  | _ -> Alcotest.fail "cannot commit after abort")

let test_txn_read_only_no_conflict () =
  let kv = Kv.create () in
  Kv.apply kv [ ("n", Kv.Int 0) ];
  let t1 = Txn.begin_ kv in
  ignore (Txn.read t1 "n");
  (* An unrelated key changes: no conflict for n's version. *)
  Kv.apply kv [ ("m", Kv.Int 1) ];
  checkb "still commits" (Txn.commit t1 = Txn.Committed)

let test_txn_type_error () =
  let kv = Kv.create () in
  Kv.apply kv [ ("s", Kv.Str "x") ];
  let t = Txn.begin_ kv in
  (match Txn.incr t "s" 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error expected")

let test_resource () =
  let r = Resource.airline () in
  check Alcotest.int "capacity" 50 (Resource.available r);
  checkb "reserve" (Resource.reserve r 3 = Ok ());
  check Alcotest.int "after reserve" 47 (Resource.available r);
  checkb "release" (Resource.release r 1 = Ok ());
  check Alcotest.int "after release" 48 (Resource.available r);
  (match Resource.reserve r 100 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overdraw must fail");
  check Alcotest.int "overdraw left stock intact" 48 (Resource.available r)

let test_resource_exhaustion () =
  let r = Resource.create ~store:(Kv.create ()) ~key:"k" ~capacity:2 in
  checkb "1" (Resource.reserve r 1 = Ok ());
  checkb "2" (Resource.reserve r 1 = Ok ());
  checkb "3 fails" (Result.is_error (Resource.reserve r 1));
  check Alcotest.int "empty" 0 (Resource.available r)

let suite =
  [
    Alcotest.test_case "kv basics" `Quick test_kv_basic;
    Alcotest.test_case "txn commit" `Quick test_txn_commit;
    Alcotest.test_case "txn reads own writes" `Quick test_txn_own_writes;
    Alcotest.test_case "txn write conflict" `Quick test_txn_conflict;
    Alcotest.test_case "txn abort" `Quick test_txn_abort;
    Alcotest.test_case "txn unrelated writes ok" `Quick test_txn_read_only_no_conflict;
    Alcotest.test_case "txn type errors" `Quick test_txn_type_error;
    Alcotest.test_case "resources" `Quick test_resource;
    Alcotest.test_case "resource exhaustion" `Quick test_resource_exhaustion;
    qtest ~count:100 "counter never negative under random ops"
      QCheck2.Gen.(list_size (int_bound 30) (pair bool (int_range 1 3)))
      (fun ops ->
        let r = Resource.create ~store:(Kv.create ()) ~key:"k" ~capacity:5 in
        List.iter
          (fun (take, n) ->
            ignore (if take then Resource.reserve r n else Resource.release r n))
          ops;
        Resource.available r >= 0);
  ]
