(* Guards: DNF construction, the merge-based simplifier, semantics, and
   the assimilation proof rules of Section 4.3. *)

open Wf_core
open Helpers

let guard_testable = Alcotest.testable Guard.pp Guard.equal

let gstr gd = Formula.to_string (Guard.to_formula gd)

let test_constructors () =
  checkb "top true" (Guard.is_true Guard.top);
  checkb "bottom false" (Guard.is_false Guard.bottom);
  check Alcotest.string "has" "[]e" (gstr (Guard.has (lit "e")));
  check Alcotest.string "hasnt" "!e" (gstr (Guard.hasnt (lit "e")));
  check Alcotest.string "will" "<>e" (gstr (Guard.will (lit "e")));
  check Alcotest.string "will neg" "<>~e" (gstr (Guard.will (lit "~e")))

let test_boolean_structure () =
  let a = Guard.has (lit "e") in
  check guard_testable "conj top" a (Guard.conj a Guard.top);
  check guard_testable "sum bottom" a (Guard.sum a Guard.bottom);
  checkb "conj bottom" (Guard.is_false (Guard.conj a Guard.bottom));
  checkb "sum top" (Guard.is_true (Guard.sum a Guard.top));
  checkb "contradiction collapses"
    (Guard.is_false (Guard.conj (Guard.has (lit "e")) (Guard.has (lit "~e"))))

let test_example8_as_masks () =
  (* The laws of Example 8 hold by mask arithmetic. *)
  let dia_e = Guard.will (lit "e") and dia_ne = Guard.will (lit "~e") in
  let box_e = Guard.has (lit "e") and not_e = Guard.hasnt (lit "e") in
  checkb "◇e + ◇ē = T" (Guard.is_true (Guard.sum dia_e dia_ne));
  checkb "◇e | ◇ē = 0" (Guard.is_false (Guard.conj dia_e dia_ne));
  checkb "¬e + □e = T" (Guard.is_true (Guard.sum not_e box_e));
  checkb "¬e | □e = 0" (Guard.is_false (Guard.conj not_e box_e));
  check guard_testable "¬e + □ē = ¬e"
    not_e
    (Guard.sum not_e (Guard.has (lit "~e")));
  check guard_testable "◇e | □e = □e" box_e (Guard.conj dia_e box_e)

let test_merge_products () =
  (* (¬f|¬f̄) + □f̄ merges to ¬f (the simplification of Example 9.6). *)
  let merged =
    Guard.sum
      (Guard.conj (Guard.hasnt (lit "f")) (Guard.hasnt (lit "~f")))
      (Guard.has (lit "~f"))
  in
  check guard_testable "merged to ¬f" (Guard.hasnt (lit "f")) merged

let test_will_term () =
  let tau = Option.get (Term.make [ lit "e"; lit "f" ]) in
  let gd = Guard.will_term tau in
  check Alcotest.string "pending term prints" "<>e.f" (gstr gd);
  (* ◇(e·f) implies ◇e and ◇f. *)
  let alpha = alpha_ef in
  checkb "implies ◇e"
    (List.for_all
       (fun u ->
         List.for_all
           (fun i ->
             (not (Guard.eval u i gd)) || Guard.eval u i (Guard.will (lit "e")))
           (List.init (Trace.length u + 1) Fun.id))
       (Universe.maximal_traces alpha))

let test_will_nf_distribution () =
  (* ◇ distributes over + and | for monotone occurrence predicates. *)
  let d = Expr.choice (Expr.seq e f) ng in
  let gd = Guard.will_nf (Nf.of_expr d) in
  let alpha = alpha_efg in
  List.iter
    (fun u ->
      List.iter
        (fun i ->
          (* ◇D at i iff D holds at the final index (monotone). *)
          check Alcotest.bool
            (Printf.sprintf "◇D at %s,%d" (Trace.to_string u) i)
            (Semantics.satisfies u d)
            (Guard.eval u i gd))
        (List.init (Trace.length u + 1) Fun.id))
    (Universe.maximal_traces alpha)

let test_eval_matches_formula () =
  let gd =
    Guard.sum
      (Guard.conj (Guard.hasnt (lit "f")) (Guard.will (lit "e")))
      (Guard.will_term (Option.get (Term.make [ lit "f"; lit "g" ])))
  in
  let form = Guard.to_formula gd in
  List.iter
    (fun u ->
      List.iter
        (fun i ->
          check Alcotest.bool
            (Printf.sprintf "agree at %s,%d" (Trace.to_string u) i)
            (Tsemantics.sat u i form) (Guard.eval u i gd))
        (List.init (Trace.length u + 1) Fun.id))
    (Universe.maximal_traces alpha_efg)

(* --- assimilation --------------------------------------------------------- *)

let test_assimilate_occurred () =
  (* Section 4.3: □e reduces □e and ◇e to T, ¬e to 0. *)
  checkb "□e to T"
    (Guard.is_true (Guard.assimilate_occurred (lit "e") (Guard.has (lit "e"))));
  checkb "◇e to T"
    (Guard.is_true (Guard.assimilate_occurred (lit "e") (Guard.will (lit "e"))));
  checkb "¬e to 0"
    (Guard.is_false (Guard.assimilate_occurred (lit "e") (Guard.hasnt (lit "e"))));
  (* And □ē kills □e and ◇e, validates ¬e. *)
  checkb "□ē kills ◇e"
    (Guard.is_false (Guard.assimilate_occurred (lit "~e") (Guard.will (lit "e"))));
  checkb "□ē validates ¬e"
    (Guard.is_true (Guard.assimilate_occurred (lit "~e") (Guard.hasnt (lit "e"))))

let test_assimilate_promise () =
  (* ◇e reduces ◇e to T but leaves □e and ¬e symbolic. *)
  checkb "promise discharges ◇e"
    (Guard.is_true (Guard.assimilate_promise (lit "e") (Guard.will (lit "e"))));
  let boxed = Guard.assimilate_promise (lit "e") (Guard.has (lit "e")) in
  checkb "promise leaves □e pending"
    ((not (Guard.is_true boxed)) && not (Guard.is_false boxed));
  let not_e = Guard.assimilate_promise (lit "e") (Guard.hasnt (lit "e")) in
  checkb "promise leaves ¬e pending"
    ((not (Guard.is_true not_e)) && not (Guard.is_false not_e));
  checkb "promise of complement kills ◇e"
    (Guard.is_false (Guard.assimilate_promise (lit "~e") (Guard.will (lit "e"))))

let test_assimilate_pending_order () =
  (* ◇(e·f): e first shrinks it to ◇f; f first kills it. *)
  let tau = Option.get (Term.make [ lit "e"; lit "f" ]) in
  let gd = Guard.will_term tau in
  check guard_testable "after e: ◇f"
    (Guard.will (lit "f"))
    (Guard.assimilate_occurred (lit "e") gd);
  checkb "after f: dead"
    (Guard.is_false (Guard.assimilate_occurred (lit "f") gd));
  checkb "complement kills"
    (Guard.is_false (Guard.assimilate_occurred (lit "~f") gd))

let test_map_symbols () =
  let gd = Guard.conj (Guard.has (lit "e")) (Guard.will (lit "f")) in
  let renamed =
    Guard.map_symbols
      (fun sym -> Symbol.make (Symbol.name sym ^ "_x"))
      gd
  in
  checkb "renamed symbols"
    (Symbol.Set.mem (Symbol.make "e_x") (Guard.symbols renamed));
  check Alcotest.int "same size" (Guard.size gd) (Guard.size renamed)

(* Property: assimilation of an occurrence preserves meaning on traces
   consistent with it. *)
let gen_guard_input = QCheck2.Gen.pair gen_expr gen_literal

let assimilation_sound (x, l) =
  let gd = Guard.will_nf (Nf.of_expr x) in
  let gd' = Guard.assimilate_occurred l gd in
  let alpha =
    Symbol.Set.add (Literal.symbol l) (Expr.symbols x)
  in
  (* On maximal traces where l occurs first, the original guard at index
     1 agrees with the assimilated guard evaluated at index 1. *)
  List.for_all
    (fun u ->
      match u with
      | first :: _ when Literal.equal first l ->
          Guard.eval u 1 gd = Guard.eval u 1 gd'
      | _ -> true)
    (Universe.maximal_traces alpha)

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "boolean structure" `Quick test_boolean_structure;
    Alcotest.test_case "Example 8 laws as masks" `Quick test_example8_as_masks;
    Alcotest.test_case "product merging" `Quick test_merge_products;
    Alcotest.test_case "pending terms" `Quick test_will_term;
    Alcotest.test_case "◇ distributes (monotonicity)" `Quick test_will_nf_distribution;
    Alcotest.test_case "eval matches formula semantics" `Quick test_eval_matches_formula;
    Alcotest.test_case "assimilate occurrences" `Quick test_assimilate_occurred;
    Alcotest.test_case "assimilate promises" `Quick test_assimilate_promise;
    Alcotest.test_case "assimilate ordered eventualities" `Quick
      test_assimilate_pending_order;
    Alcotest.test_case "symbol renaming" `Quick test_map_symbols;
    qtest ~count:150 "assimilation is sound" gen_guard_input assimilation_sound;
    qtest ~count:150 "conj evaluates as intersection"
      (QCheck2.Gen.pair gen_expr gen_expr)
      (fun (x, y) ->
        let gx = Guard.will_nf (Nf.of_expr x)
        and gy = Guard.will_nf (Nf.of_expr y) in
        let gxy = Guard.conj gx gy in
        let alpha = Symbol.Set.union (Expr.symbols x) (Expr.symbols y) in
        let alpha = if Symbol.Set.is_empty alpha then Universe.of_names ["e"] else alpha in
        List.for_all
          (fun u ->
            Guard.eval u 0 gxy = (Guard.eval u 0 gx && Guard.eval u 0 gy))
          (Universe.maximal_traces alpha));
    qtest ~count:150 "sum evaluates as union"
      (QCheck2.Gen.pair gen_expr gen_expr)
      (fun (x, y) ->
        let gx = Guard.will_nf (Nf.of_expr x)
        and gy = Guard.will_nf (Nf.of_expr y) in
        let gxy = Guard.sum gx gy in
        let alpha = Symbol.Set.union (Expr.symbols x) (Expr.symbols y) in
        let alpha = if Symbol.Set.is_empty alpha then Universe.of_names ["e"] else alpha in
        List.for_all
          (fun u ->
            Guard.eval u 0 gxy = (Guard.eval u 0 gx || Guard.eval u 0 gy))
          (Universe.maximal_traces alpha));
  ]
