(* Guard synthesis (Definition 2): Example 9, Figure 4, the theorems of
   Section 4.4, and workflow compilation. *)

open Wf_core
open Helpers

let guard_eq msg d event expected_formula =
  let gd = Synth.guard d (lit event) in
  let alpha =
    Symbol.Set.add (Literal.symbol (lit event)) (Expr.symbols d)
  in
  let alpha =
    Symbol.Set.union alpha (Formula.symbols expected_formula)
  in
  checkb msg
    (List.for_all
       (fun u ->
         List.for_all
           (fun i -> Guard.eval u i gd = Tsemantics.sat u i expected_formula)
           (List.init (Trace.length u + 1) Fun.id))
       (Universe.maximal_traces alpha))

let fe = Formula.event "e"
let ff = Formula.event "f"
let fne = Formula.complement "e"
let fnf = Formula.complement "f"

let test_example9_constants () =
  (* Items 1-4 of Example 9. *)
  checkb "G(T,e) = T" (Guard.is_true (Synth.guard Expr.top (lit "e")));
  checkb "G(0,e) = 0" (Guard.is_false (Synth.guard Expr.zero (lit "e")));
  checkb "G(e,e) = T" (Guard.is_true (Synth.guard e (lit "e")));
  checkb "G(~e,e) = 0" (Guard.is_false (Synth.guard ne (lit "e")))

let test_example9_dlt () =
  (* Items 5-8 of Example 9. *)
  checkb "G(D<,~e) = T" (Guard.is_true (Synth.guard Catalog.d_lt (lit "~e")));
  guard_eq "G(D<,e) = ¬f" Catalog.d_lt "e" (Formula.not_ ff);
  checkb "G(D<,~f) = T" (Guard.is_true (Synth.guard Catalog.d_lt (lit "~f")));
  guard_eq "G(D<,f) = ◇ē + □e" Catalog.d_lt "f"
    (Formula.or_ (Formula.eventually fne) (Formula.always fe))

let test_example11 () =
  (* D→ gives e's guard ◇f; adding the transpose gives f's guard ◇e. *)
  guard_eq "G(D→,e) = ◇f" Catalog.d_arrow "e" (Formula.eventually ff);
  checkb "G(D→ᵀ,e) = T"
    (Guard.is_true (Synth.guard Catalog.d_arrow_transpose (lit "e")));
  let w = [ Catalog.d_arrow; Catalog.d_arrow_transpose ] in
  let ge = Synth.workflow_guard w (lit "e") in
  let gf = Synth.workflow_guard w (lit "f") in
  check Alcotest.string "workflow guard on e" "<>f"
    (Formula.to_string (Guard.to_formula ge));
  check Alcotest.string "workflow guard on f" "<>e"
    (Formula.to_string (Guard.to_formula gf))

let test_canonical_printing () =
  check Alcotest.string "G(D<,e) prints as !f" "!f"
    (Formula.to_string (Guard.to_formula (Synth.guard Catalog.d_lt (lit "e"))));
  check Alcotest.string "G(D<,f) prints canonically" "[]e + <>~e"
    (Formula.to_string (Guard.to_formula (Synth.guard Catalog.d_lt (lit "f"))))

let test_sequence_closed_form () =
  (* The remark before Definition 3:
     G(e1·…·ek·…·en, ek) = □e1|…|□e_{k-1}|¬e_{k+1}|…|¬e_n|◇(e_{k+1}·…·e_n). *)
  let d = Expr.seq_all [ e; f; g ] in
  guard_eq "guard of middle of chain" d "f"
    (Formula.and_all
       [ Formula.always fe; Formula.not_ (Formula.event "g");
         Formula.eventually (Formula.event "g") ])

let test_unmentioned_event_guard () =
  (* workflow_guard is T for events no dependency mentions. *)
  checkb "unmentioned is T"
    (Guard.is_true (Synth.workflow_guard [ Catalog.d_lt ] (lit "zz")))

(* --- Section 4.4 results -------------------------------------------------- *)

let disjoint_pairs =
  (* Alphabet-disjoint dependency pairs for Theorems 2 and 4. *)
  let h = Expr.event "h" and k = Expr.event "k" in
  [
    (Catalog.d_lt, Catalog.precedes (lit "h") (lit "k"));
    (Catalog.d_arrow, Expr.choice (Expr.complement "h") k);
    (Expr.seq e f, Expr.seq h k);
  ]

let test_theorem2 () =
  List.iteri
    (fun i (d1, d2) ->
      List.iter
        (fun ev ->
          checkb
            (Printf.sprintf "theorem 2 pair %d on %s" i ev)
            (Theorems.check_theorem2 d1 d2 (lit ev)))
        [ "e"; "h"; "~e" ])
    disjoint_pairs

let test_theorem4 () =
  List.iteri
    (fun i (d1, d2) ->
      List.iter
        (fun ev ->
          checkb
            (Printf.sprintf "theorem 4 pair %d on %s" i ev)
            (Theorems.check_theorem4 d1 d2 (lit ev)))
        [ "e"; "h"; "~e" ])
    disjoint_pairs

let test_lemma3 () =
  List.iter
    (fun (d, ev, g) ->
      checkb
        (Printf.sprintf "lemma 3 on %s by %s" (Expr.to_string d) g)
        (Theorems.check_lemma3 d (lit ev) (lit g)))
    [
      (Catalog.d_lt, "e", "f");
      (Catalog.d_lt, "f", "~e");
      (Catalog.d_arrow, "e", "f");
      (Expr.seq e f, "f", "e");
    ]

let test_lemma5 () =
  List.iter
    (fun (d, ev) ->
      checkb
        (Printf.sprintf "lemma 5 on %s for %s" (Expr.to_string d) ev)
        (Theorems.check_lemma5 d (lit ev)))
    [
      (Catalog.d_lt, "e");
      (Catalog.d_lt, "f");
      (Catalog.d_lt, "~e");
      (Catalog.d_arrow, "e");
      (Catalog.d_arrow, "f");
      (Expr.seq e f, "e");
      (Expr.seq e f, "f");
    ]

let test_theorem6_small_workflows () =
  List.iter
    (fun (name, deps, alpha) ->
      checkb name (Correctness.theorem6_holds deps alpha))
    [
      ("{D<}", [ Catalog.d_lt ], alpha_ef);
      ("{D→}", [ Catalog.d_arrow ], alpha_ef);
      ("{D<, D→}", [ Catalog.d_lt; Catalog.d_arrow ], alpha_ef);
      ( "{D→, D→ᵀ}",
        [ Catalog.d_arrow; Catalog.d_arrow_transpose ],
        alpha_ef );
      ( "chain",
        [ Expr.seq_all [ e; f ] ],
        alpha_ef );
    ]

let test_theorem6_travel () =
  let deps = List.map snd (Catalog.travel_workflow ()) in
  let alpha =
    List.fold_left
      (fun a d -> Symbol.Set.union a (Expr.symbols d))
      Symbol.Set.empty deps
  in
  checkb "travel workflow satisfies Theorem 6"
    (Correctness.theorem6_holds deps alpha)

let test_compile () =
  let deps = List.map snd (Catalog.travel_workflow ()) in
  let c = Compile.compile deps in
  check Alcotest.int "alphabet size" 5 (Symbol.Set.cardinal (Compile.alphabet c));
  let plan = Compile.plan c (lit "c_buy") in
  check Alcotest.string "c_buy guard" "[]c_book"
    (Formula.to_string (Guard.to_formula plan.Compile.guard));
  checkb "c_buy watches c_book"
    (Symbol.Set.mem (Symbol.make "c_book") plan.Compile.watched);
  checkb "c_book actors subscribe to c_buy announcements"
    (List.exists
       (fun l -> Symbol.equal (Literal.symbol l) (Symbol.make "c_book"))
       (Compile.subscribers c (Symbol.make "c_buy")));
  checkb "total guard size positive" (Compile.total_guard_size c > 0)

let gen_expr_lit = QCheck2.Gen.pair gen_expr gen_literal

let suite =
  [
    Alcotest.test_case "Example 9: constants" `Quick test_example9_constants;
    Alcotest.test_case "Example 9: D< guards" `Quick test_example9_dlt;
    Alcotest.test_case "Example 11: mutual eventualities" `Quick test_example11;
    Alcotest.test_case "canonical printing" `Quick test_canonical_printing;
    Alcotest.test_case "sequence closed form" `Quick test_sequence_closed_form;
    Alcotest.test_case "unmentioned events" `Quick test_unmentioned_event_guard;
    Alcotest.test_case "Theorem 2" `Quick test_theorem2;
    Alcotest.test_case "Theorem 4" `Quick test_theorem4;
    Alcotest.test_case "Lemma 3" `Quick test_lemma3;
    Alcotest.test_case "Lemma 5" `Quick test_lemma5;
    Alcotest.test_case "Theorem 6 on small workflows" `Quick
      test_theorem6_small_workflows;
    Alcotest.test_case "Theorem 6 on the travel workflow" `Slow
      test_theorem6_travel;
    Alcotest.test_case "workflow compilation" `Quick test_compile;
    qtest ~count:60 "Theorem 6 on random singleton workflows" gen_expr
      (fun d ->
        let alpha = Expr.symbols d in
        let alpha =
          if Symbol.Set.is_empty alpha then Universe.of_names [ "e" ] else alpha
        in
        Correctness.theorem6_holds [ d ] alpha);
    qtest ~count:60 "lemma 5 on random dependencies" gen_expr_lit
      (fun (d, x) -> Theorems.check_lemma5 d x);
    qtest ~count:60 "guards are weakest among sequence prefixes" gen_expr_lit
      (fun (d, x) ->
        (* Firing when the guard holds never violates D on any
           completion: G(D,x) at i and x at i+1 implies some maximal
           extension satisfies D... we check the contrapositive used in
           Theorem 6's proof: traces satisfying D are generated. *)
        let alpha = Symbol.Set.add (Literal.symbol x) (Expr.symbols d) in
        List.for_all
          (fun u ->
            (not (Semantics.satisfies u d)) || Correctness.generates [ d ] u)
          (Universe.maximal_traces alpha));
  ]
